"""Event-loop hot-path guards: heap floor and calendar-core differential.

Every simulated cycle of every component funnels through the kernel's
dispatch loop, so regressions here multiply across the whole
reproduction.  Two kinds of guard live here:

* **Heap floor** — the reference core keeps bare ``(when, seq, event)``
  tuples on the heap precisely so sifting compares machine integers;
  swapping the entries back to rich-compared objects costs ~25% of
  end-to-end simulator throughput, which the throughput floor catches.
  The floor is set ~4x below the throughput measured on a modest dev
  machine (~1M events/s) so that CI noise never trips it while a real
  hot-path regression still does.
* **Calendar differential** — the calendar core
  (:mod:`repro.sim.calendar`, the default via
  ``SystemConfig.calendar_kernel``) must beat the heap core by >= 1.2x
  dispatch throughput on the *default apache profile stream*: the
  per-dispatch schedule pattern recorded from a real default-config
  apache machine run and replayed through both bare kernels, so the
  ratio measures exactly the queue substrate and nothing else.  The
  tri-mode test holds heap / calendar / calendar+tracer machine runs
  bit-identical.
"""

from time import perf_counter

from repro.sim.calendar import CalendarSimulator
from repro.sim.kernel import Simulator
from repro.sim.profile import DispatchProfile

from benchmarks.conftest import record_bench, smoke_mode

SMOKE = smoke_mode()

# Dispatches per measured run; large enough to amortise setup noise.
# REPRO_BENCH_SMOKE=1 (the CI smoke step) shrinks the run and lowers the
# floor accordingly — short runs amortise interpreter warmup worse.
EVENTS = 20_000 if SMOKE else 200_000

# Conservative floor (events/second).  A genuine hot-path regression
# (e.g. per-comparison callbacks during heap sifting) costs well over
# the slack this leaves for slow CI hardware.
MIN_EVENTS_PER_SECOND = 60_000 if SMOKE else 150_000


def _self_scheduling_chain(n: int) -> Simulator:
    """A worst-case-ish queue: every dispatch schedules another event."""
    sim = Simulator()
    remaining = [n]

    def fire() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule_after(1, fire, "hotpath")

    sim.schedule(1, fire, "hotpath")
    return sim


def test_event_loop_throughput(benchmark):
    def run_chain():
        sim = _self_scheduling_chain(EVENTS)
        sim.run()
        assert sim.events_dispatched == EVENTS
        return sim

    sim = benchmark(run_chain)
    seconds = benchmark.stats["mean"]
    rate = EVENTS / seconds
    print(f"\nkernel event loop: {rate:,.0f} events/s "
          f"({seconds * 1e9 / EVENTS:.0f} ns/event)")
    assert rate > MIN_EVENTS_PER_SECOND, (
        f"event loop regressed to {rate:,.0f} events/s "
        f"(floor {MIN_EVENTS_PER_SECOND:,})"
    )


def test_no_tracer_pays_no_dispatch_overhead():
    """The tracer-off floor: with ``sim.tracer`` left None, the dispatch
    loop must not be slower than the traced loop (which times every
    callback) beyond measurement noise.  This is what keeps observability
    opt-in — a change that folds per-event tracing work into the common
    path (e.g. collapsing the dual run loops, or hoisting a tracer check
    into the pop) shows up here as the untraced time approaching the
    traced one."""
    events = EVENTS // 2
    best = {False: float("inf"), True: float("inf")}
    for _ in range(5):
        # Interleaved so machine-speed drift cannot bias the ratio.
        for traced in (False, True):
            sim = _self_scheduling_chain(events)
            if traced:
                sim.tracer = DispatchProfile()
            started = perf_counter()
            sim.run()
            elapsed = perf_counter() - started
            assert sim.events_dispatched == events
            best[traced] = min(best[traced], elapsed)
    print(f"\nuntraced {events / best[False]:,.0f} events/s vs "
          f"traced {events / best[True]:,.0f} events/s")
    # The traced loop does strictly more work (two clock reads and a
    # histogram update per dispatch), so 10% slack is generous: the
    # untraced path regressing to traced cost trips this long before.
    assert best[False] <= best[True] * 1.10, (
        f"tracer-off dispatch path lost its advantage: untraced "
        f"{best[False]:.4f}s vs traced {best[True]:.4f}s for {events:,} events"
    )


def test_dense_same_cycle_bursts(benchmark):
    """Many events at the same cycle (tie-broken by seq) — the pattern
    network fan-out produces; exercises heap behaviour under ties."""
    BURSTS, PER_BURST = 200, 100

    def run_bursts():
        sim = Simulator()
        fired = [0]

        def fire() -> None:
            fired[0] += 1

        for burst in range(BURSTS):
            for _ in range(PER_BURST):
                sim.schedule(burst * 10 + 5, fire, "burst")
        sim.run()
        assert fired[0] == BURSTS * PER_BURST
        return sim

    benchmark(run_bursts)


# ----------------------------------------------------------------------
# Calendar-core differential: the apache profile stream
# ----------------------------------------------------------------------

# The calendar core must beat the heap core by at least this much on the
# recorded apache stream.  Measured ~1.6-2x on a modest dev machine; 1.2x
# leaves CI noise plenty of room while still failing if the calendar
# path decays to heap cost (e.g. a change that sends the hot short-delay
# traffic through the overflow tier).
MIN_CALENDAR_SPEEDUP = 1.2

#: Replayed dispatches per measured run (the recorded stream is truncated
#: to this many dispatch slots).
STREAM_EVENTS = 8_000 if SMOKE else 120_000


def _record_apache_stream(max_dispatches: int):
    """The default apache profile stream: per-dispatch schedule delays
    recorded from a real default-config apache machine run.

    Entry ``i`` lists the ``when - now`` delays of every ``schedule``
    call the machine made while dispatching its ``i``-th kernel event, so
    a replay reproduces the machine's temporal pattern — the zero-delay
    bursts, the hop ladder, the sparse deadline sweeps — through a bare
    kernel with no component code in the loop.
    """
    from repro.config import SystemConfig
    from repro.system.machine import Machine
    from repro.workloads import apache

    config = SystemConfig.tiny()
    machine = Machine(
        config, apache(num_cpus=config.num_processors, scale=64, seed=1),
        seed=1)
    sim = machine.sim
    stream = [[] for _ in range(max_dispatches)]
    recorded = [0]
    orig_schedule = sim.schedule

    def recording_schedule(when, callback, label=""):
        slot = sim.events_dispatched
        if slot < max_dispatches:
            stream[slot].append(when - sim.now)
            recorded[0] += 1
        return orig_schedule(when, callback, label)

    sim.schedule = recording_schedule
    instructions = 2_000 if SMOKE else 80_000
    machine.run(instructions, max_cycles=30_000_000)
    # Trim trailing empty dispatch slots the run never reached.
    while stream and not stream[-1]:
        stream.pop()
    assert stream, "apache recording produced no schedule stream"
    return stream


def _replay_stream(kernel, stream) -> float:
    """Replay the recorded stream: each dispatched event performs the
    schedule calls the machine made during its dispatch slot.  Returns
    elapsed wall seconds; dispatch count and final clock are returned on
    the kernel itself for cross-core comparison."""
    index = [0]
    n = len(stream)

    def fire() -> None:
        i = index[0]
        index[0] = i + 1
        if i < n:
            for delay in stream[i]:
                kernel.schedule(kernel.now + delay, fire, "replay")

    for delay in stream[0]:
        kernel.schedule(kernel.now + delay, fire, "replay")
    started = perf_counter()
    kernel.run()
    return perf_counter() - started


def test_calendar_beats_heap_on_apache_stream():
    """The tentpole guard: >=1.2x dispatch throughput over the heap core
    on the recorded default-apache schedule stream, with bit-identical
    dispatch counts and final clocks."""
    stream = _record_apache_stream(STREAM_EVENTS)
    best = {"heap": float("inf"), "calendar": float("inf")}
    shape = {}
    for _ in range(3):
        # Interleaved so machine-speed drift cannot bias the ratio.
        for name, factory in (("heap", Simulator),
                              ("calendar", CalendarSimulator)):
            kernel = factory()
            elapsed = _replay_stream(kernel, stream)
            best[name] = min(best[name], elapsed)
            observed = (kernel.events_dispatched, kernel.now,
                        kernel.peak_pending)
            assert shape.setdefault(name, observed) == observed
    assert shape["heap"] == shape["calendar"], (
        f"cores diverged on the apache stream: heap={shape['heap']} "
        f"calendar={shape['calendar']}"
    )
    events = shape["calendar"][0]
    speedup = best["heap"] / best["calendar"]
    print(f"\napache stream ({events:,} dispatches): heap "
          f"{events / best['heap']:,.0f} events/s, calendar "
          f"{events / best['calendar']:,.0f} events/s ({speedup:.2f}x)")
    record_bench("kernel_apache_stream", speedup, events, best["calendar"])
    assert speedup >= MIN_CALENDAR_SPEEDUP, (
        f"calendar core only {speedup:.2f}x over heap on the apache "
        f"stream (floor {MIN_CALENDAR_SPEEDUP}x)"
    )


def test_kernel_tri_mode_machine_bit_identical():
    """heap / calendar / calendar+tracer machine runs must be
    bit-identical: same RunResult, same counters, same dispatch count.
    The traced mode matters because ``_run_traced`` is a separate loop —
    this is what keeps its semantics from drifting."""
    from repro.config import SystemConfig
    from repro.system.machine import Machine
    from repro.workloads import apache

    instructions = 1_000 if SMOKE else 4_000

    def run_mode(calendar: bool, traced: bool):
        config = SystemConfig.tiny(calendar_kernel=calendar)
        machine = Machine(
            config, apache(num_cpus=config.num_processors, scale=64, seed=1),
            seed=1)
        machine.inject_transient_faults(period=2_500, first_at=1_200)
        if traced:
            machine.sim.tracer = DispatchProfile()
        result = machine.run(instructions, max_cycles=30_000_000)
        counters = machine.stats.counters_matching("")
        return (result.cycles, result.committed_instructions,
                result.completed, result.crashed, result.recoveries,
                result.lost_instructions, result.reexecuted_instructions,
                machine.sim.events_dispatched, machine.sim.peak_pending,
                counters)

    heap = run_mode(calendar=False, traced=False)
    cal = run_mode(calendar=True, traced=False)
    cal_traced = run_mode(calendar=True, traced=True)
    assert heap == cal, "calendar kernel diverged from heap oracle"
    assert cal == cal_traced, "traced calendar loop diverged from untraced"
