"""Event-loop hot-path guard.

Every simulated cycle of every component funnels through
``Simulator.run``'s heap pop, so regressions here multiply across the
whole reproduction.  The kernel keeps bare ``(when, seq, event)`` tuples
on the heap precisely so sifting compares machine integers; swapping the
entries back to rich-compared objects costs ~25% of end-to-end simulator
throughput, which this guard would catch.

The floor is set ~4x below the throughput measured on a modest dev
machine (~1M events/s) so that CI noise never trips it while a real
hot-path regression still does.
"""

from time import perf_counter

from repro.sim.kernel import Simulator
from repro.sim.profile import DispatchProfile

from benchmarks.conftest import smoke_mode

SMOKE = smoke_mode()

# Dispatches per measured run; large enough to amortise setup noise.
# REPRO_BENCH_SMOKE=1 (the CI smoke step) shrinks the run and lowers the
# floor accordingly — short runs amortise interpreter warmup worse.
EVENTS = 20_000 if SMOKE else 200_000

# Conservative floor (events/second).  A genuine hot-path regression
# (e.g. per-comparison callbacks during heap sifting) costs well over
# the slack this leaves for slow CI hardware.
MIN_EVENTS_PER_SECOND = 60_000 if SMOKE else 150_000


def _self_scheduling_chain(n: int) -> Simulator:
    """A worst-case-ish queue: every dispatch schedules another event."""
    sim = Simulator()
    remaining = [n]

    def fire() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule_after(1, fire, "hotpath")

    sim.schedule(1, fire, "hotpath")
    return sim


def test_event_loop_throughput(benchmark):
    def run_chain():
        sim = _self_scheduling_chain(EVENTS)
        sim.run()
        assert sim.events_dispatched == EVENTS
        return sim

    sim = benchmark(run_chain)
    seconds = benchmark.stats["mean"]
    rate = EVENTS / seconds
    print(f"\nkernel event loop: {rate:,.0f} events/s "
          f"({seconds * 1e9 / EVENTS:.0f} ns/event)")
    assert rate > MIN_EVENTS_PER_SECOND, (
        f"event loop regressed to {rate:,.0f} events/s "
        f"(floor {MIN_EVENTS_PER_SECOND:,})"
    )


def test_no_tracer_pays_no_dispatch_overhead():
    """The tracer-off floor: with ``sim.tracer`` left None, the dispatch
    loop must not be slower than the traced loop (which times every
    callback) beyond measurement noise.  This is what keeps observability
    opt-in — a change that folds per-event tracing work into the common
    path (e.g. collapsing the dual run loops, or hoisting a tracer check
    into the pop) shows up here as the untraced time approaching the
    traced one."""
    events = EVENTS // 2
    best = {False: float("inf"), True: float("inf")}
    for _ in range(5):
        # Interleaved so machine-speed drift cannot bias the ratio.
        for traced in (False, True):
            sim = _self_scheduling_chain(events)
            if traced:
                sim.tracer = DispatchProfile()
            started = perf_counter()
            sim.run()
            elapsed = perf_counter() - started
            assert sim.events_dispatched == events
            best[traced] = min(best[traced], elapsed)
    print(f"\nuntraced {events / best[False]:,.0f} events/s vs "
          f"traced {events / best[True]:,.0f} events/s")
    # The traced loop does strictly more work (two clock reads and a
    # histogram update per dispatch), so 10% slack is generous: the
    # untraced path regressing to traced cost trips this long before.
    assert best[False] <= best[True] * 1.10, (
        f"tracer-off dispatch path lost its advantage: untraced "
        f"{best[False]:.4f}s vs traced {best[True]:.4f}s for {events:,} events"
    )


def test_dense_same_cycle_bursts(benchmark):
    """Many events at the same cycle (tie-broken by seq) — the pattern
    network fan-out produces; exercises heap behaviour under ties."""
    BURSTS, PER_BURST = 200, 100

    def run_bursts():
        sim = Simulator()
        fired = [0]

        def fire() -> None:
            fired[0] += 1

        for burst in range(BURSTS):
            for _ in range(PER_BURST):
                sim.schedule(burst * 10 + 5, fire, "burst")
        sim.run()
        assert fired[0] == BURSTS * PER_BURST
        return sim

    benchmark(run_bursts)
