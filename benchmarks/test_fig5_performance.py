"""Figure 5 — Performance evaluation of SafetyNet.

Five bars per workload, exactly as in the paper:

1. unprotected, fault-free
2. unprotected, with fault            -> crash
3. SafetyNet, fault-free
4. SafetyNet, 10 transient faults/s   (dropped messages, Experiment 2)
5. SafetyNet, hard fault              (killed half-switch, Experiment 3)

Expected shape: bars 1 and 3 statistically equal (SafetyNet adds no
common-case overhead); bar 2 crashes; bar 4 close to fault-free; bar 5
completes with some slowdown from the lost interconnect bandwidth.

Scaled runs compress the fault period (the paper's one-per-100M-cycles
would mean zero faults in a short simulation); the harness also prints
the overhead *extrapolated back to the paper's fault rate* from measured
lost-work per recovery.

The whole figure is one ``repro.experiments`` campaign: every (workload,
bar, seed) cell becomes a hashable RunSpec and the Runner fans the runs
out over worker processes (REPRO_BENCH_JOBS to override).
"""

from repro.analysis import (
    ascii_bar_chart,
    extrapolate_transient_overhead,
    normalized_performance,
)
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once

# Compressed transient-fault period for scaled runs (cycles).
TRANSIENT_PERIOD = 60_000
HARD_FAULT_AT = 50_000


def bar_specs(name: str, profile):
    """The five Fig. 5 bars for one workload, as RunSpec lists."""
    base = profile.base_spec(workload=name)
    transient = dict(fault="transient", fault_period=TRANSIENT_PERIOD,
                     fault_at=TRANSIENT_PERIOD // 2)
    seeds = profile.seeds
    return {
        "unprot_ff": [base.with_(safetynet=False, seed=s) for s in seeds],
        "unprot_fault": [base.with_(safetynet=False, seed=seeds[0],
                                    **transient)],
        "sn_ff": [base.with_(seed=s) for s in seeds],
        "sn_transient": [base.with_(seed=s, **transient) for s in seeds],
        "sn_hard": [base.with_(seed=seeds[0], fault="switch",
                               fault_at=HARD_FAULT_AT)],
    }


def summarise_workload(name: str, results):
    base = results["unprot_ff"]
    bars = {
        "Unprotected fault-free":
            normalized_performance(base, base, "unprot ff"),
        "Unprotected with fault":
            normalized_performance(results["unprot_fault"], base, "unprot fault"),
        "SafetyNet fault-free":
            normalized_performance(results["sn_ff"], base, "sn ff"),
        "SafetyNet transient faults":
            normalized_performance(results["sn_transient"], base, "sn transient"),
        "SafetyNet hard fault":
            normalized_performance(results["sn_hard"], base, "sn hard"),
    }
    extrapolated = extrapolate_transient_overhead(results["sn_transient"])
    return bars, extrapolated, results


def test_fig5_performance_evaluation(benchmark, profile):
    def experiment():
        # One flat campaign covering every workload x bar x seed; the
        # runner executes it with a process pool and hands the records
        # back in spec order.
        campaign = {name: bar_specs(name, profile) for name in WORKLOAD_NAMES}
        flat = [spec for bars in campaign.values()
                for specs in bars.values() for spec in specs]
        records = iter(profile.runner().run(flat))
        out = {}
        for name, bars in campaign.items():
            results = {
                bar: [next(records).to_run_result() for _ in specs]
                for bar, specs in bars.items()
            }
            out[name] = summarise_workload(name, results)
        return out

    all_results = run_once(experiment, benchmark)

    print("\nFIGURE 5 — Normalized performance "
          "(1.0 = unprotected fault-free; paper reports all five workloads)")
    for name in WORKLOAD_NAMES:
        bars, extrapolated, _ = all_results[name]
        values = {label: bar.mean for label, bar in bars.items()}
        crashes = [label for label, bar in bars.items() if bar.crashed]
        print()
        print(ascii_bar_chart(values, title=f"[{name}]", crashes=crashes))
        for label, bar in bars.items():
            if not bar.crashed:
                print(f"    {label}: {bar.mean:.3f} +- {bar.stddev:.3f}")
        print(f"    transient overhead extrapolated to the paper's "
              f"10 faults/s: {extrapolated:.4%}")

    # --- shape assertions (the paper's claims) -------------------------
    for name in WORKLOAD_NAMES:
        bars, extrapolated, results = all_results[name]
        # (2) the unprotected system crashes under faults;
        assert bars["Unprotected with fault"].crashed, name
        # (1,3) SafetyNet adds no significant fault-free overhead
        # (within noise + 8% at quick scale).
        sn_ff = bars["SafetyNet fault-free"]
        assert not sn_ff.crashed, name
        assert sn_ff.mean > 0.92, f"{name}: SafetyNet ff {sn_ff.mean:.3f}"
        # (4) SafetyNet survives transient faults and actually recovered;
        sn_tr = bars["SafetyNet transient faults"]
        assert not sn_tr.crashed, name
        assert any(r.recoveries > 0 for r in results["sn_transient"]), name
        # (5) SafetyNet survives the hard fault (reconfigured routing);
        assert not bars["SafetyNet hard fault"].crashed, name
        # at the paper's actual fault rate the overhead is negligible.
        assert extrapolated < 0.01, f"{name}: {extrapolated:.2%}"
