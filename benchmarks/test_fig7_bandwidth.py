"""Figure 7 — Cache bandwidth breakdown vs. checkpoint interval (static
web server workload).

The paper decomposes cache data-array bandwidth into cache hits, cache
fills, coherence responses, and logging (reading the old copy of a block
out for the CLB).  SafetyNet's extra bandwidth is the logging share: ~4%
at very short (5k-cycle) intervals, falling to ~0.3% at million-cycle
intervals.  Only store-overwrite logging costs extra bandwidth — transfer
logging reuses the read the response needed anyway (paper §4.3).
"""

from repro.analysis import format_table
from repro.config import SystemConfig
from repro.system.machine import Machine
from repro.workloads import apache

from benchmarks.conftest import run_once

INTERVALS = [2_000, 5_000, 12_500, 30_000, 75_000]
KINDS = ["hits", "fills", "coherence", "logging"]


def measure_bandwidth(interval: int, profile):
    cfg = SystemConfig.sim_scaled(profile.scale, checkpoint_interval=interval)
    machine = Machine(cfg, apache(num_cpus=16, scale=profile.scale, seed=1),
                      seed=1)
    result = machine.run_with_warmup(
        profile.warmup_instructions, profile.measure_instructions,
        max_cycles=profile.max_cycles,
    )
    assert result.completed and not result.crashed
    totals = {kind: 0 for kind in KINDS}
    for node in machine.nodes:
        for kind, nbytes in node.cache.bw.by_kind().items():
            totals[kind] += nbytes
    total = sum(totals.values())
    return {kind: totals[kind] / total for kind in KINDS}


def test_fig7_bandwidth_breakdown(benchmark, profile):
    def experiment():
        return {i: measure_bandwidth(i, profile) for i in INTERVALS}

    shares = run_once(experiment, benchmark)

    rows = [
        (f"{interval:,}",) + tuple(f"{shares[interval][k]:.3f}" for k in KINDS)
        for interval in INTERVALS
    ]
    print()
    print(format_table(
        ["interval (cycles)"] + [f"{k} frac" for k in KINDS],
        rows,
        title="FIGURE 7 — cache bandwidth breakdown vs checkpoint interval "
              "(apache)",
    ))

    # Hits dominate at every interval (the paper's chart is mostly 'hits').
    for interval in INTERVALS:
        assert shares[interval]["hits"] > 0.5, interval
    # Logging bandwidth falls as intervals lengthen...
    log_series = [shares[i]["logging"] for i in INTERVALS]
    assert log_series[0] > 2.0 * log_series[-1], log_series
    # ...and is a small share even at the shortest interval (paper: <= ~4%).
    assert log_series[0] < 0.10, log_series
    # At the longest interval it is nearly free (paper: ~0.3%).
    assert log_series[-1] < 0.02, log_series
    # The non-logging shares barely move: SafetyNet does not perturb the
    # underlying traffic.
    for kind in ("hits", "fills", "coherence"):
        series = [shares[i][kind] for i in INTERVALS]
        assert max(series) - min(series) < 0.12, (kind, series)
