"""CPU-side hot path guard (burst-local fast path + deadline-table timeouts).

The PR-4 overhaul has three coordinated layers — lazy timeout arming
(``config.lazy_timeouts``), the burst-local fast path
(``config.burst_fast_path``), and the profiling harness that measures
both — and this guard holds them to their claims the same way the
kernel/network/validation guards hold theirs:

* **throughput** — on a default 4x4 machine driving a *CPU-hot op
  stream* (a private, cache-resident footprint: after warmup it runs at
  ~100% hit rate, so the per-op cost is what's measured — the analogue of
  the network guard's bare hop stream), the overhauled paths must be
  >= 1.3x faster wall-clock than the legacy paths, with bit-identical
  results.  The default *workloads* (apache/jbb) are network-bound after
  PRs 2-3, so they get a regression floor rather than the full claim —
  the README records the measured end-to-end trajectory.
* **dispatch mix** — dead ``cache.timeout`` events were ~5-7% of all
  kernel dispatches on a busy legacy run; under ``lazy_timeouts`` the
  timeout machinery (sweep events included) must be <1% of dispatches.
  Measured with the PR's own ``repro profile`` harness
  (:class:`repro.sim.profile.DispatchProfile`).
* **equivalence** — full default-4x4 apache/jbb runs must produce
  bit-identical ``RunResult`` fields and counters in both modes.  The
  fast paths are optimisations, never a model change.

``REPRO_BENCH_SMOKE=1`` shrinks run lengths and relaxes the wall-clock
floor for the CI smoke step, keeping the structural assertions intact.
"""

import time

from repro.config import SystemConfig
from repro.sim.profile import DispatchProfile
from repro.system.machine import Machine
from repro.workloads import by_name
from repro.workloads.base import SyntheticWorkload, WorkloadSpec

from benchmarks.conftest import record_bench, run_once, smoke_mode

SMOKE = smoke_mode()

# The CPU-hot stream: purely private accesses over a footprint every
# block of which is hot, so after warmup the whole measured phase is
# store-upgraded, cache-resident hits — the burst loop's best case and
# the differential the 1.3x tentpole claim is about.
CPU_HOT = WorkloadSpec(name="cpu_hot", shared_frac=0.0, private_blocks=64,
                       private_hot_blocks=64, store_hot_blocks=64,
                       ro_shared_blocks=8, rw_shared_blocks=8,
                       migratory_blocks=4)
HOT_WARMUP = 2_000 if SMOKE else 5_000
HOT_INSTRUCTIONS = 6_000 if SMOKE else 40_000
# Wall-clock floors.  Full profile enforces the tentpole claim on the
# CPU-hot stream; smoke only guards against gross regressions (tiny runs
# are noisy).  The end-to-end default workloads are network-bound, so
# their floor is a loose regression guard (best-of-TIMING_REPEATS, and
# not asserted at all in smoke — sub-second runs are startup-dominated).
MIN_HOT_SPEEDUP = 1.05 if SMOKE else 1.30
MIN_E2E_SPEEDUP = None if SMOKE else 0.95
# Structural floor: lazy timeouts must remove events outright.
MAX_EVENT_RATIO = 0.99
# Dispatch-mix claims (full runs only; smoke runs arm too few timeouts
# for the legacy fraction to be meaningful).
MAX_LAZY_TIMEOUT_FRAC = 0.01
MIN_LEGACY_TIMEOUT_FRAC = 0.02
TIMING_REPEATS = 3

EQUIV_INSTRUCTIONS = 1_000 if SMOKE else 4_000


def _overrides(fast: bool) -> dict:
    return {"lazy_timeouts": fast, "burst_fast_path": fast}


def _hot_machine(fast: bool) -> Machine:
    config = SystemConfig.sim_scaled(16).with_overrides(**_overrides(fast))
    return Machine(config, SyntheticWorkload(CPU_HOT, 16, seed=1), seed=1)


def _hot_run(fast: bool):
    machine = _hot_machine(fast)
    started = time.perf_counter()
    result = machine.run_with_warmup(HOT_WARMUP, HOT_INSTRUCTIONS,
                                     max_cycles=120_000_000)
    elapsed = time.perf_counter() - started
    key = (result.cycles, result.committed_instructions, result.recoveries,
           result.completed, result.crashed,
           machine.stats.sum_counters(".cache.loads"),
           machine.stats.sum_counters(".cache.stores"),
           machine.stats.sum_counters(".cache.misses"),
           machine.stats.sum_counters(".core.instructions_executed"))
    return key, elapsed, machine.sim.events_dispatched


def _best_hot_interleaved():
    """Best-of-N per mode, fast/legacy interleaved within each round so
    slow drift in machine speed (turbo, thermal, noisy neighbours)
    cannot bias the ratio toward either side."""
    best = {True: float("inf"), False: float("inf")}
    keys = {}
    for _ in range(TIMING_REPEATS):
        for fast in (True, False):
            k, elapsed, ev = _hot_run(fast)
            best[fast] = min(best[fast], elapsed)
            if fast not in keys:
                keys[fast] = (k, ev)
            else:
                assert keys[fast] == (k, ev)  # deterministic
    return ((keys[True][0], best[True], keys[True][1]),
            (keys[False][0], best[False], keys[False][1]))


def test_cpu_hot_stream_throughput(benchmark):
    (fast_key, fast_s, fast_ev), (legacy_key, legacy_s, legacy_ev) = \
        run_once(_best_hot_interleaved, benchmark)

    speedup = legacy_s / fast_s
    event_ratio = fast_ev / legacy_ev
    print(f"\ncpu-hot stream ({HOT_INSTRUCTIONS} instr/cpu, warm "
          f"{HOT_WARMUP}):"
          f"\n  legacy: {legacy_s:.3f}s, {legacy_ev:,} kernel events"
          f"\n  fast  : {fast_s:.3f}s, {fast_ev:,} kernel events"
          f"\n  speedup {speedup:.2f}x, event ratio {event_ratio:.3f}")
    record_bench("cpu_hot_stream", speedup, fast_ev, fast_s,
                 event_ratio=round(event_ratio, 3))
    assert fast_key == legacy_key, (
        f"fast paths diverged on the CPU-hot stream\n"
        f"  fast  : {fast_key}\n  legacy: {legacy_key}")
    assert fast_key[3] and not fast_key[4]          # completed, not crashed
    assert event_ratio < MAX_EVENT_RATIO, (
        f"lazy timeouts stopped removing events: ratio {event_ratio:.3f}")
    assert speedup >= MIN_HOT_SPEEDUP, (
        f"CPU-side fast paths only {speedup:.2f}x faster than legacy "
        f"(floor {MIN_HOT_SPEEDUP:.2f}x)")


def _machine_result(fast: bool, workload: str, instructions: int):
    config = SystemConfig.sim_scaled(16).with_overrides(**_overrides(fast))
    machine = Machine(
        config,
        by_name(workload, num_cpus=config.num_processors, scale=16, seed=1),
        seed=1,
    )
    started = time.perf_counter()
    result = machine.run(instructions, max_cycles=10_000_000)
    elapsed = time.perf_counter() - started
    return (result.cycles, result.committed_instructions, result.recoveries,
            result.completed, result.crashed,
            machine.stats.counter("net.messages_delivered").value,
            machine.stats.counter("net.bytes_sent").value,
            machine.stats.sum_counters(".cache.loads"),
            machine.stats.sum_counters(".cache.stores"),
            machine.stats.sum_counters(".cache.stores_logged")), elapsed


def _best_defaults(workload: str):
    """Best-of-TIMING_REPEATS per mode, interleaved (single samples and
    one-mode-first ordering both flake in CI)."""
    best = {True: float("inf"), False: float("inf")}
    keys = {}
    for _ in range(TIMING_REPEATS):
        for fast in (True, False):
            k, elapsed = _machine_result(fast, workload, EQUIV_INSTRUCTIONS)
            best[fast] = min(best[fast], elapsed)
            if fast not in keys:
                keys[fast] = k
            else:
                assert keys[fast] == k  # deterministic
    return (keys[True], best[True]), (keys[False], best[False])


def test_default_runs_bit_identical_and_not_slower(benchmark):
    def experiment():
        return {workload: _best_defaults(workload)
                for workload in ("apache", "jbb")}

    results = run_once(experiment, benchmark)
    for workload, ((fast, fast_s), (legacy, legacy_s)) in results.items():
        assert fast == legacy, (
            f"{workload}: fast-path run diverged from legacy\n"
            f"  fast  : {fast}\n  legacy: {legacy}")
        cycles, committed, recoveries, completed, crashed = fast[:5]
        assert completed and not crashed
        assert committed >= EQUIV_INSTRUCTIONS * 16
        print(f"\n{workload}: e2e speedup {legacy_s / fast_s:.2f}x "
              f"(network-bound; see README trajectory)")
        if MIN_E2E_SPEEDUP is not None:
            assert legacy_s / fast_s >= MIN_E2E_SPEEDUP, (
                f"{workload}: end-to-end regression "
                f"({legacy_s / fast_s:.2f}x < {MIN_E2E_SPEEDUP}x)")


def _timeout_fraction(fast: bool) -> float:
    """Share of kernel dispatches spent on timeout machinery."""
    config = SystemConfig.sim_scaled(16).with_overrides(**_overrides(fast))
    machine = Machine(
        config, by_name("jbb", num_cpus=16, scale=16, seed=1), seed=1)
    profile = DispatchProfile()
    machine.sim.tracer = profile
    machine.run(EQUIV_INSTRUCTIONS, max_cycles=10_000_000)
    return (profile.dispatch_fraction("cache.timeout")
            + profile.dispatch_fraction("cache.timeout_sweep"))


def test_timeout_dispatch_fraction_collapses(benchmark):
    def experiment():
        return _timeout_fraction(True), _timeout_fraction(False)

    lazy_frac, legacy_frac = run_once(experiment, benchmark)
    print(f"\ntimeout dispatch fraction: legacy {legacy_frac:.1%} -> "
          f"lazy {lazy_frac:.2%}")
    assert lazy_frac < MAX_LAZY_TIMEOUT_FRAC, (
        f"lazy timeout machinery is {lazy_frac:.2%} of dispatches "
        f"(claimed <{MAX_LAZY_TIMEOUT_FRAC:.0%})")
    if not SMOKE:
        # Sanity that the claim means something: the legacy path really
        # does burn a visible slice of the kernel on dead timeouts.
        assert legacy_frac > MIN_LEGACY_TIMEOUT_FRAC
