"""§3.4 — tolerable detection latency vs. checkpoint policy.

The paper: "we allow four outstanding checkpoints and choose fc = 10 kHz
to enable 400,000 cycles of detection latency tolerance"; longer intervals
buy more tolerance at the cost of CLB storage and output-commit delay.

This bench sweeps the detection latency against the outstanding-checkpoint
window and shows the paper's pipelining claim: within the window, slow
detection costs recovery-point *lag*, not throughput; beyond it, the
machine throttles execution.
"""

from repro.analysis import format_table
from repro.config import SystemConfig
from repro.system.machine import Machine
from repro.workloads import apache

from benchmarks.conftest import run_once


def test_detection_latency_tolerance(benchmark, profile):
    def experiment():
        cfg = SystemConfig.sim_scaled(profile.scale)
        out = {}
        for intervals_of_latency in [0, 2, 4, 8]:
            latency = intervals_of_latency * cfg.checkpoint_interval
            machine = Machine(
                cfg, apache(num_cpus=16, scale=profile.scale, seed=3),
                seed=3, detection_latency=latency,
            )
            # Beyond-window points stall permanently; cap their cycles so
            # the bench spends its time on the interesting regime.
            cap = profile.max_cycles
            if intervals_of_latency > cfg.outstanding_checkpoints:
                cap = min(cap, 4_000_000)
            result = machine.run_with_warmup(
                profile.warmup_instructions, profile.measure_instructions,
                max_cycles=cap,
            )
            throttles = machine.stats.sum_counters(".outstanding_ckpt_stalls")
            out[intervals_of_latency] = (result, throttles)
        return cfg, out

    cfg, sweep = run_once(experiment, benchmark)

    base_cycles = sweep[0][0].cycles
    rows = []
    for k, (result, throttles) in sweep.items():
        rows.append((
            f"{k} intervals ({k * cfg.checkpoint_interval:,} cy)",
            f"{base_cycles / result.cycles:.3f}" if result.completed else "DNF",
            throttles,
        ))
    print()
    print(format_table(
        ["detection latency", "normalized perf", "throttle events"],
        rows,
        title=f"S3.4 — detection-latency tolerance "
              f"(window = {cfg.outstanding_checkpoints} outstanding "
              f"x {cfg.checkpoint_interval:,}-cycle intervals "
              f"= {cfg.detection_latency_tolerance:,} cycles)",
    ))

    # Within the window: performance unaffected (pipelined validation).
    within = sweep[2][0]
    assert within.completed
    assert base_cycles / within.cycles > 0.95
    # Beyond the window (8 intervals > 4 outstanding): the recovery point
    # permanently lags by more than the window, so execution throttles —
    # the paper's "in the worst case, by stalling execution" (§3.5).  The
    # design rule is exactly that detection latency must fit within
    # outstanding x interval; past it the machine stalls rather than runs.
    beyond_result, beyond_throttles = sweep[8]
    assert beyond_throttles > 0, "no throttling beyond the window"
    assert not beyond_result.crashed  # stalls, never breaks
    assert not beyond_result.completed  # cannot sustain execution out there
