"""Ablation — error-detection code strength vs. SafetyNet (paper §5.1).

"Current systems use short codes since the code must be checked before
data is forwarded or used.  SafetyNet permits longer, and inherently
stronger, codes because of its ability to tolerate long detection
latencies."

This ablation injects message-corruption transients under codes of
increasing strength (and latency) and reports coverage: weak codes leak
silent corruptions; strong slow codes catch everything, and their extra
latency is absorbed by the pipelined validation (fault-free runtime does
not change with the code).
"""

from repro.analysis import format_table
from repro.config import SystemConfig
from repro.detection.codes import CRC8, CRC32, PARITY, SECDED
from repro.system.machine import Machine
from repro.workloads import slashcode

from benchmarks.conftest import run_once

CODES = [PARITY, SECDED, CRC8, CRC32]


def test_detection_code_strength_ablation(benchmark, profile):
    def experiment():
        out = {}
        for code in CODES:
            cfg = SystemConfig.sim_scaled(profile.scale)
            machine = Machine(
                cfg, slashcode(num_cpus=16, scale=profile.scale, seed=5),
                seed=5, error_code=code,
            )
            machine.inject_corruption_faults(period=15_000, first_at=10_000)
            result = machine.run(
                instructions_per_cpu=profile.measure_instructions,
                max_cycles=profile.max_cycles,
            )
            out[code.name] = (code, result, machine)
        return out

    sweep = run_once(experiment, benchmark)

    rows = []
    for name, (code, result, machine) in sweep.items():
        detected = machine.stats.sum_counters(".corruptions_detected")
        silent = machine.stats.sum_counters(".silent_corruptions")
        rows.append((
            name,
            f"{code.coverage:.4f}",
            code.check_latency,
            detected,
            silent,
            result.recoveries,
            "yes" if result.completed and not result.crashed else "NO",
        ))
    print()
    print(format_table(
        ["code", "coverage", "check latency (cy)", "detected", "silent",
         "recoveries", "survived"],
        rows,
        title="S5.1 — detection-code strength under corruption transients "
              "(slashcode)",
    ))

    # Every protected run survives regardless of code strength.
    for name, (code, result, machine) in sweep.items():
        assert not result.crashed, name
        assert result.completed, name
    # The strong code achieves full coverage...
    _, crc32_result, crc32_machine = sweep["crc32"]
    assert crc32_machine.stats.sum_counters(".silent_corruptions") == 0
    assert crc32_machine.stats.sum_counters(".corruptions_detected") >= 1
    # ...while the weak code leaks silent corruptions.
    _, _, parity_machine = sweep["parity"]
    assert parity_machine.stats.sum_counters(".silent_corruptions") >= 1
