"""Figure 8 — Performance vs. CLB size.

The paper runs all five workloads with 1 MB, 512 kB, and 256 kB CLBs (the
text adds that 128 kB degrades everything): 512 kB and 1 MB perform
equally, 256 kB degrades jbb and apache first.  The scaled equivalent
keeps the same ratios to the scaled checkpoint interval.  Degradation
appears as CLB backpressure: store throttling, NACKs, and in the extreme
watchdog recoveries.

The sweep is a ``repro.experiments`` campaign: workloads x CLB sizes
expand into RunSpecs and execute through the parallel Runner; the
backpressure diagnostics ride along in each record's harvested metrics.
"""

from repro.analysis import format_table
from repro.experiments import Sweep
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once

# Scaled analogue of the paper's sweep.  The sim_scaled default (512k/16 =
# 32 kB = 455 entries) plays the paper's 512 kB design point.  Our sweep
# goes deeper than the paper's 1/2 and 1/4 points because the synthetic
# workloads have thinner logging-rate tails than full commercial runs —
# the knee sits at a smaller fraction of the design size, but it is the
# same knee (see EXPERIMENTS.md).
SIZES = {
    "2x design": 2 * (512 * 1024 // 16),
    "design (512kB-eq)": 512 * 1024 // 16,
    "1/8 design": 512 * 1024 // 128,
    "1/16 design": 512 * 1024 // 256,
}


def sweep_specs(profile) -> Sweep:
    # The livelock guard is disabled: undersized CLBs should *degrade*
    # (stalls, NACKs, watchdog recoveries), never convert to a crash —
    # that is the paper's "sized for performance, not correctness".
    base = profile.base_spec(
        seed=1,
        max_cycles=min(profile.max_cycles, 8_000_000),
        config_overrides=(("max_recoveries", 10**9),),
    )
    return Sweep(base=base,
                 grid={"workload": list(WORKLOAD_NAMES),
                       "clb_bytes": list(SIZES.values())},
                 seeds=[1])


def backpressure(record) -> int:
    return int(record.metrics["store_throttles"]
               + record.metrics["nacks_sent"]
               + record.metrics["fwd_clb_stalls"])


def test_fig8_performance_vs_clb_size(benchmark, profile):
    def experiment():
        sweep = sweep_specs(profile)
        specs = sweep.expand()
        records = profile.runner().run(specs)
        by_cell = {(r.spec.workload, r.spec.clb_bytes): r for r in records}
        return {
            name: {label: by_cell[(name, size)]
                   for label, size in SIZES.items()}
            for name in WORKLOAD_NAMES
        }

    data = run_once(experiment, benchmark)

    print("\nFIGURE 8 — normalized performance vs CLB size "
          "(1.0 = largest CLB)")
    rows = []
    normalized = {}
    for name in WORKLOAD_NAMES:
        base_rate = data[name]["2x design"].work_rate
        normalized[name] = {}
        for label in SIZES:
            record = data[name][label]
            perf = record.work_rate / base_rate if base_rate else 0.0
            normalized[name][label] = perf
            rows.append((name, label, f"{perf:.3f}", backpressure(record),
                         record.recoveries))
    print(format_table(
        ["workload", "CLB size", "normalized perf", "backpressure events",
         "recoveries"],
        rows,
    ))

    for name in WORKLOAD_NAMES:
        # Design-size CLBs are performance-neutral vs. double-size
        # (the paper: 512 kB and 1 MB statistically equivalent).
        assert normalized[name]["design (512kB-eq)"] > 0.95, (
            name, normalized[name])
        # Small CLBs never beat the design size meaningfully.
        assert (normalized[name]["1/16 design"]
                <= normalized[name]["design (512kB-eq)"] * 1.05), name
    # Some workload degrades measurably at the small end (the paper: all
    # workloads degrade at 128 kB; jbb/apache already at 256 kB).
    worst = min(normalized[name]["1/16 design"] for name in WORKLOAD_NAMES)
    assert worst < 0.97, f"small CLBs never hurt anyone: {normalized}"
    # jbb is among the most CLB-hungry (allocation streaming): bottom three.
    jbb_small = normalized["jbb"]["1/16 design"]
    assert jbb_small <= sorted(
        normalized[n]["1/16 design"] for n in WORKLOAD_NAMES
    )[2], normalized
