"""Shared benchmark-harness configuration.

Every file in benchmarks/ regenerates one of the paper's tables or
figures (see DESIGN.md's experiment index and EXPERIMENTS.md for the
measured-vs-paper comparison).  They run the real simulator, print the
table/series the paper reports, and assert the result *shape*.

Scale is controlled by the REPRO_BENCH_PROFILE environment variable:

* ``quick`` (default): runs sized for a few minutes total.
* ``full``: longer runs and more seeds for tighter error bars.

All benches use ``benchmark.pedantic(..., rounds=1)`` — the experiment is
the measurement; repeating a multi-second full-system simulation for
statistical timing would conflate simulator wall-time with the paper's
simulated-cycle metrics.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List

import pytest


@dataclass(frozen=True)
class BenchProfile:
    name: str
    warmup_instructions: int
    measure_instructions: int
    seeds: List[int]
    scale: int = 16           # machine + workload scaling factor
    max_cycles: int = 30_000_000

    @property
    def jobs(self) -> int:
        """Worker processes for campaign-style benches (REPRO_BENCH_JOBS).

        Per-run results are independent of the job count (each run is an
        isolated deterministic simulation), so parallelism only changes
        wall-clock time.
        """
        raw = os.environ.get("REPRO_BENCH_JOBS")
        if raw is not None:
            return max(1, int(raw))
        return min(4, os.cpu_count() or 1)

    def base_spec(self, **changes):
        """A RunSpec carrying this profile's methodology defaults."""
        from repro.experiments import RunSpec

        return RunSpec(
            instructions=self.measure_instructions,
            warmup=self.warmup_instructions,
            scale=self.scale,
            max_cycles=self.max_cycles,
        ).with_(**changes)

    def runner(self, store=None, progress=None):
        """A Runner wired for measurement campaigns.

        Benchmarks must be the measurement, not the recovery drill:
        retries are disabled (a failing cell should fail the bench
        loudly, and retry wall-time would pollute the timing) and the
        backend comes from ``REPRO_BENCH_BACKEND`` (default ``auto``) so
        the campaign fabric's backends can be A/B-timed without editing
        the benches.
        """
        from repro.experiments import Runner

        backend = os.environ.get("REPRO_BENCH_BACKEND", "auto")
        return Runner(jobs=self.jobs, store=store, progress=progress,
                      backend=backend, retries=0)


def smoke_mode() -> bool:
    """CI smoke: shrink hot-path benchmark iteration counts to seconds.

    Set ``REPRO_BENCH_SMOKE=1`` to run the hot-path guards
    (``-k "hotpath or table2"``) with tiny workloads — enough to catch a
    gross regression in the workflow without the full measurement runs.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")


def current_profile() -> BenchProfile:
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name == "full":
        return BenchProfile(
            name="full",
            warmup_instructions=15_000,
            measure_instructions=30_000,
            seeds=[1, 2, 3, 4, 5],
        )
    return BenchProfile(
        name="quick",
        warmup_instructions=4_000,
        measure_instructions=8_000,
        seeds=[1, 2],
    )


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    return current_profile()


def run_once(experiment, benchmark):
    """Run ``experiment`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1,
                              warmup_rounds=0)


def record_bench(guard: str, speedup: float, events: int,
                 wall_s: float, **extra) -> None:
    """Append one machine-readable guard result to ``$REPRO_BENCH_JSON``.

    Each differential guard (kernel, CPU, network, validation hot paths)
    calls this with the measured fast/legacy ratio; when the environment
    variable is unset nothing happens.  The file is JSON-lines — one
    ``{"guard", "speedup", "events", "wall_s", ...}`` object per guard
    per run — so the README's speedup trajectory can be regenerated from
    committed ``BENCH_*.json`` data instead of maintained as prose:

        REPRO_BENCH_JSON=BENCH_kernel.json pytest benchmarks/test_kernel_hotpath.py
    """
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    row = {"guard": guard, "speedup": round(speedup, 3),
           "events": events, "wall_s": round(wall_s, 4)}
    row.update(extra)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
