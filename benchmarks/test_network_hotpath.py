"""Network hop hot-path guard (slotted vs legacy scheduling).

The interconnect schedules every switch-to-switch hop of every coherence
message, so its dispatch cost multiplies across the whole simulator the
same way the kernel heap does.  The slotted scheme performs leave +
arrive + depart in one kernel dispatch per hop (same-cycle completions
are deliberately NOT batched into shared heap entries — that reordered
hop processing against interleaved non-hop events; see the Network
docstring); the legacy scheme (two scheduled closures per hop) is
retained behind ``slotted=False`` purely so this guard can measure one
against the other:

* **throughput** — slotted must dispatch materially fewer kernel events
  and be >= 20% faster on a steady hop stream (the structural
  event-count check is noise-free; the wall-clock check is what the
  speedup claim actually promises);
* **equivalence** — a full default-4x4 machine run must produce
  bit-identical ``RunResult`` fields in both modes.  The slotted path is
  an optimisation, never a model change.

``REPRO_BENCH_SMOKE=1`` shrinks the iteration counts for the CI smoke
step (see .github/workflows/ci.yml) and relaxes the wall-clock floor,
keeping the structural assertions intact.
"""

import time

from repro.config import SystemConfig
from repro.interconnect.messages import Message, MessageKind
from repro.interconnect.network import Network
from repro.interconnect.routing import RoutingTable
from repro.interconnect.topology import TorusTopology
from repro.sim.kernel import Simulator
from repro.system.machine import Machine
from repro.workloads import by_name

from benchmarks.conftest import run_once, smoke_mode

SMOKE = smoke_mode()

# Messages per timed run; each traverses several switch hops.
MESSAGES = 2_000 if SMOKE else 20_000
# Wall-clock floor for slotted vs legacy.  The full-size requirement is
# the >=20% claim; the smoke floor only guards against gross regressions
# (tiny runs are noisy).
MIN_SPEEDUP = 1.05 if SMOKE else 1.20
# Structural floor, independent of machine load: one event per hop must
# remove essentially half of legacy's two-events-per-hop dispatches.
MAX_EVENT_RATIO = 0.6
TIMING_REPEATS = 3


def _hop_stream(slotted: bool, n_messages: int):
    """A steady self-refuelling hop stream on a bare 4x4 network."""
    sim = Simulator()
    topo = TorusTopology(4, 4)
    net = Network(sim, topo, RoutingTable(topo), slotted=slotted)
    remaining = [n_messages]

    def deliver(msg: Message) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            net.send(Message(MessageKind.GETS, src=msg.dst,
                             dst=(msg.dst * 7 + 3) % 16))

    for nid in range(16):
        net.attach(nid, deliver)
    for src in range(16):
        net.send(Message(MessageKind.GETS, src=src, dst=(src + 5) % 16))
    return sim


def _time_stream(slotted: bool) -> tuple:
    """(best wall seconds, kernel events) over TIMING_REPEATS runs."""
    best = float("inf")
    events = None
    for _ in range(TIMING_REPEATS):
        sim = _hop_stream(slotted, MESSAGES)
        started = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - started)
        if events is None:
            events = sim.events_dispatched
        else:
            assert events == sim.events_dispatched  # deterministic
    return best, events


def test_hop_dispatch_throughput(benchmark):
    def experiment():
        legacy_s, legacy_events = _time_stream(slotted=False)
        slotted_s, slotted_events = _time_stream(slotted=True)
        return legacy_s, legacy_events, slotted_s, slotted_events

    legacy_s, legacy_events, slotted_s, slotted_events = \
        run_once(experiment, benchmark)

    speedup = legacy_s / slotted_s
    event_ratio = slotted_events / legacy_events
    print(f"\nnetwork hop dispatch ({MESSAGES} messages):"
          f"\n  legacy : {legacy_s:.3f}s, {legacy_events:,} kernel events"
          f"\n  slotted: {slotted_s:.3f}s, {slotted_events:,} kernel events"
          f"\n  speedup: {speedup:.2f}x, event ratio {event_ratio:.2f}")
    assert event_ratio < MAX_EVENT_RATIO, (
        f"slotted scheduling stopped batching: {slotted_events:,} events vs "
        f"legacy {legacy_events:,} (ratio {event_ratio:.2f})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"slotted hop dispatch only {speedup:.2f}x faster than legacy "
        f"(floor {MIN_SPEEDUP:.2f}x)"
    )


def _machine_result(slotted: bool, workload: str, instructions: int):
    config = SystemConfig.sim_scaled(16)      # the default 4x4 machine
    machine = Machine(
        config,
        by_name(workload, num_cpus=config.num_processors, scale=16, seed=1),
        seed=1,
        slotted_network=slotted,
    )
    result = machine.run(instructions, max_cycles=10_000_000)
    # Precondition for mode equivalence: the release-cycle tie (see the
    # Network class docstring) is only unobservable while no switch
    # buffer ever saturates and no switch is killed.
    assert machine.stats.counter("net.buffer_stalls").value == 0, (
        "equivalence run hit backpressure; its slotted/legacy comparison "
        "is no longer guaranteed bit-identical")
    return (result.cycles, result.committed_instructions, result.recoveries,
            result.completed, result.crashed,
            machine.stats.counter("net.messages_delivered").value,
            machine.stats.counter("net.bytes_sent").value)


def test_slotted_results_bit_identical(benchmark):
    instructions = 1_000 if SMOKE else 4_000

    def experiment():
        out = {}
        for workload in ("apache", "jbb"):
            out[workload] = (_machine_result(True, workload, instructions),
                             _machine_result(False, workload, instructions))
        return out

    results = run_once(experiment, benchmark)
    for workload, (slotted, legacy) in results.items():
        assert slotted == legacy, (
            f"{workload}: slotted run diverged from legacy\n"
            f"  slotted: {slotted}\n  legacy : {legacy}"
        )
        cycles, committed, recoveries, completed, crashed, _, _ = slotted
        assert completed and not crashed
        assert committed >= instructions * 16
