"""Network hop hot-path guard (slotted vs legacy scheduling).

The interconnect schedules every switch-to-switch hop of every coherence
message, so its dispatch cost multiplies across the whole simulator the
same way the kernel heap does.  The slotted scheme performs leave +
arrive + depart in one kernel dispatch per hop (same-cycle completions
are deliberately NOT batched into shared heap entries — that reordered
hop processing against interleaved non-hop events; see the Network
docstring); the legacy scheme (two scheduled closures per hop) is
retained behind ``slotted=False`` purely so this guard can measure one
against the other:

* **throughput** — slotted must dispatch materially fewer kernel events
  and be >= 20% faster on a steady hop stream (the structural
  event-count check is noise-free; the wall-clock check is what the
  speedup claim actually promises);
* **equivalence** — a full default-4x4 machine run must produce
  bit-identical ``RunResult`` fields in both modes.  The slotted path is
  an optimisation, never a model change.

*Express hops* (PR 7) layer on top of slotted scheduling: when a
flight's remaining segment is idle, one ``net.express`` dispatch covers
the whole segment.  Its guards live here too:

* **reduction** — on an idle 8x8 stream the per-hop dispatch count
  (``net.hop`` + ``net.express``) must drop >= 1.5x vs
  slotted-without-express, with an identical delivery sequence in all
  three modes;
* **equivalence** — full default-4x4 machine runs must produce
  bit-identical ``RunResult`` fields across express, slotted-without-
  express, and legacy;
* **degradation** — on a contended stream express must fall back to
  hop-by-hop (interrupts fire, dispatch counts stay near slotted's)
  rather than thrash.

``REPRO_BENCH_SMOKE=1`` shrinks the iteration counts for the CI smoke
step (see .github/workflows/ci.yml) and relaxes the wall-clock floor,
keeping the structural assertions intact.
"""

import dataclasses
import time

from repro.config import SystemConfig
from repro.interconnect.messages import Message, MessageKind
from repro.interconnect.network import Network
from repro.interconnect.routing import RoutingTable
from repro.interconnect.topology import TorusTopology
from repro.sim.kernel import Simulator
from repro.system.machine import Machine
from repro.workloads import by_name

from benchmarks.conftest import record_bench, run_once, smoke_mode

SMOKE = smoke_mode()

# Messages per timed run; each traverses several switch hops.
MESSAGES = 2_000 if SMOKE else 20_000
# Wall-clock floor for slotted vs legacy.  The full-size requirement is
# the >=20% claim; the smoke floor only guards against gross regressions
# (tiny runs are noisy).
MIN_SPEEDUP = 1.05 if SMOKE else 1.20
# Structural floor, independent of machine load: one event per hop must
# remove essentially half of legacy's two-events-per-hop dispatches.
MAX_EVENT_RATIO = 0.6
TIMING_REPEATS = 3


def _hop_stream(slotted: bool, n_messages: int, express: bool = False):
    """A steady self-refuelling hop stream on a bare 4x4 network."""
    sim = Simulator()
    topo = TorusTopology(4, 4)
    net = Network(sim, topo, RoutingTable(topo), slotted=slotted,
                  express=express)
    remaining = [n_messages]

    def deliver(msg: Message) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            net.send(Message(MessageKind.GETS, src=msg.dst,
                             dst=(msg.dst * 7 + 3) % 16))

    for nid in range(16):
        net.attach(nid, deliver)
    for src in range(16):
        net.send(Message(MessageKind.GETS, src=src, dst=(src + 5) % 16))
    return sim, net


def _time_stream(slotted: bool) -> tuple:
    """(best wall seconds, kernel events) over TIMING_REPEATS runs."""
    best = float("inf")
    events = None
    for _ in range(TIMING_REPEATS):
        sim, _ = _hop_stream(slotted, MESSAGES)
        started = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - started)
        if events is None:
            events = sim.events_dispatched
        else:
            assert events == sim.events_dispatched  # deterministic
    return best, events


def test_hop_dispatch_throughput(benchmark):
    def experiment():
        legacy_s, legacy_events = _time_stream(slotted=False)
        slotted_s, slotted_events = _time_stream(slotted=True)
        return legacy_s, legacy_events, slotted_s, slotted_events

    legacy_s, legacy_events, slotted_s, slotted_events = \
        run_once(experiment, benchmark)

    speedup = legacy_s / slotted_s
    event_ratio = slotted_events / legacy_events
    print(f"\nnetwork hop dispatch ({MESSAGES} messages):"
          f"\n  legacy : {legacy_s:.3f}s, {legacy_events:,} kernel events"
          f"\n  slotted: {slotted_s:.3f}s, {slotted_events:,} kernel events"
          f"\n  speedup: {speedup:.2f}x, event ratio {event_ratio:.2f}")
    record_bench("network_hop_dispatch", speedup, slotted_events, slotted_s,
                 event_ratio=round(event_ratio, 3))
    assert event_ratio < MAX_EVENT_RATIO, (
        f"slotted scheduling stopped batching: {slotted_events:,} events vs "
        f"legacy {legacy_events:,} (ratio {event_ratio:.2f})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"slotted hop dispatch only {speedup:.2f}x faster than legacy "
        f"(floor {MIN_SPEEDUP:.2f}x)"
    )


def _machine_result(slotted: bool, workload: str, instructions: int,
                    express: bool = False):
    config = dataclasses.replace(SystemConfig.sim_scaled(16),
                                 express_hops=express)  # default 4x4 machine
    machine = Machine(
        config,
        by_name(workload, num_cpus=config.num_processors, scale=16, seed=1),
        seed=1,
        slotted_network=slotted,
    )
    result = machine.run(instructions, max_cycles=10_000_000)
    # Precondition for mode equivalence: the release-cycle tie (see the
    # Network class docstring) is only unobservable while no switch
    # buffer ever saturates and no switch is killed.
    assert machine.stats.counter("net.buffer_stalls").value == 0, (
        "equivalence run hit backpressure; its slotted/legacy comparison "
        "is no longer guaranteed bit-identical")
    return (result.cycles, result.committed_instructions, result.recoveries,
            result.completed, result.crashed,
            machine.stats.counter("net.messages_delivered").value,
            machine.stats.counter("net.bytes_sent").value)


def test_slotted_results_bit_identical(benchmark):
    instructions = 1_000 if SMOKE else 4_000

    def experiment():
        out = {}
        for workload in ("apache", "jbb"):
            out[workload] = (_machine_result(True, workload, instructions),
                             _machine_result(False, workload, instructions))
        return out

    results = run_once(experiment, benchmark)
    for workload, (slotted, legacy) in results.items():
        assert slotted == legacy, (
            f"{workload}: slotted run diverged from legacy\n"
            f"  slotted: {slotted}\n  legacy : {legacy}"
        )
        cycles, committed, recoveries, completed, crashed, _, _ = slotted
        assert completed and not crashed
        assert committed >= instructions * 16


# ----------------------------------------------------------------------
# Express hops (PR 7)
# ----------------------------------------------------------------------

# An express segment must cut per-hop dispatches at least this much on a
# stream whose switches are idle (one message in the network at a time).
MIN_EXPRESS_DISPATCH_REDUCTION = 1.5


class _HopCounter:
    """Kernel tracer counting per-hop dispatches by label."""

    def __init__(self):
        self.counts = {}

    def record(self, label, seconds):
        self.counts[label] = self.counts.get(label, 0) + 1

    def hop_dispatches(self):
        return (self.counts.get("net.hop", 0)
                + self.counts.get("net.express", 0))


def _idle_stream(express: bool, slotted: bool, n_messages: int):
    """One message at a time crossing an 8x8 torus: every switch on the
    path is idle, so every network-path send is express-eligible."""
    sim = Simulator()
    topo = TorusTopology(8, 8)
    net = Network(sim, topo, RoutingTable(topo), slotted=slotted,
                  express=express)
    tracer = _HopCounter()
    sim.tracer = tracer
    remaining = [n_messages]
    deliveries = []

    def deliver(msg: Message) -> None:
        deliveries.append((sim.now, msg.src, msg.dst))
        if remaining[0] > 0:
            remaining[0] -= 1
            # Long diagonal routes: plenty of idle switches to skip.
            net.send(Message(MessageKind.GETS, src=msg.dst,
                             dst=(msg.dst + 27) % 64))

    for nid in range(64):
        net.attach(nid, deliver)
    net.send(Message(MessageKind.GETS, src=0, dst=27))
    sim.run()
    return tracer, deliveries, net


def test_express_hop_dispatch_reduction(benchmark):
    """Idle 8x8 stream: express must replace most per-switch dispatches
    with one segment dispatch, without changing a single delivery."""
    n = 200 if SMOKE else 2_000

    def experiment():
        return (_idle_stream(True, True, n),
                _idle_stream(False, True, n),
                _idle_stream(False, False, n))

    (express, slotted, legacy) = run_once(experiment, benchmark)
    e_tracer, e_deliveries, e_net = express
    s_tracer, s_deliveries, _ = slotted
    l_tracer, l_deliveries, _ = legacy

    assert e_deliveries == s_deliveries == l_deliveries, (
        "express changed the delivery sequence on an idle stream")
    e_hops = e_tracer.hop_dispatches()
    s_hops = s_tracer.hop_dispatches()
    reduction = s_hops / e_hops
    print(f"\nidle 8x8 express stream ({n} messages):"
          f"\n  slotted: {s_hops:,} hop dispatches"
          f"\n  express: {e_hops:,} hop dispatches"
          f" ({e_tracer.counts.get('net.express', 0):,} segment events)"
          f"\n  reduction: {reduction:.2f}x")
    assert reduction >= MIN_EXPRESS_DISPATCH_REDUCTION, (
        f"express only cut hop dispatches {reduction:.2f}x on an idle "
        f"stream (floor {MIN_EXPRESS_DISPATCH_REDUCTION:.2f}x)")
    assert e_net.c_express_interrupts.value == 0, (
        "nothing contends on the idle stream; no flight should ever "
        "materialise")


def test_express_contended_stream_degrades(benchmark):
    """Contended 4x4 stream: express must fall back to hop-by-hop (the
    interruption rule) instead of thrashing commit/materialise cycles."""
    n = 1_000 if SMOKE else 5_000

    def experiment():
        sim_e, net_e = _hop_stream(True, n, express=True)
        sim_e.run()
        sim_s, net_s = _hop_stream(True, n, express=False)
        sim_s.run()
        return (sim_e.events_dispatched, net_e.c_express_interrupts.value,
                net_e.c_messages_delivered.value, sim_s.events_dispatched,
                net_s.c_messages_delivered.value)

    e_events, e_interrupts, e_delivered, s_events, s_delivered = \
        run_once(experiment, benchmark)

    assert e_delivered == s_delivered
    # Express may not *add* meaningful dispatch load under contention:
    # the adaptive credit gate stops probing once interruptions dominate.
    assert e_events <= s_events * 1.10, (
        f"express dispatched {e_events:,} events on a contended stream vs "
        f"{s_events:,} without express — the fallback is not engaging")
    print(f"\ncontended 4x4 stream ({n} messages): express {e_events:,} "
          f"events ({e_interrupts:,} interrupts), slotted {s_events:,}")


def test_express_results_bit_identical(benchmark):
    """Full-machine runs: express vs slotted-without-express vs legacy."""
    instructions = 1_000 if SMOKE else 4_000

    def experiment():
        out = {}
        for workload in ("apache", "jbb"):
            out[workload] = (
                _machine_result(True, workload, instructions, express=True),
                _machine_result(True, workload, instructions, express=False),
                _machine_result(False, workload, instructions, express=False),
            )
        return out

    results = run_once(experiment, benchmark)
    for workload, (express, slotted, legacy) in results.items():
        assert express == slotted == legacy, (
            f"{workload}: express run diverged\n"
            f"  express: {express}\n  slotted: {slotted}\n"
            f"  legacy : {legacy}")
        cycles, committed, recoveries, completed, crashed, _, _ = express
        assert completed and not crashed
        assert committed >= instructions * 16
