"""Coherence-protocol hot path guard (pluggable protocols + arbiters).

The protocol refactor's performance contract has three parts, held to
the same standard as the kernel/network/validation/CPU guards:

* **zero-cost default** — correctness is pinned elsewhere
  (tests/test_protocols.py replays pre-refactor goldens bit-for-bit);
  here the *wall-clock* claim is guarded: the protocol object adds at
  most ~5% to the CPU-hot store stream.  The pre-refactor baseline
  cannot be re-run, so the bound is enforced transitively — mesi, which
  exercises the protocol machinery *more* than mosi on this stream
  (E fills + silent-upgrade checks on every store burst), must stay
  within 1.05x of mosi's wall time; mosi's own path sits between the
  seed's inline code and mesi's generic path.
* **mesi pays for itself** — on a sharing workload (apache), mesi must
  convert networked GETM upgrades into silent E->M upgrades and finish
  in no more simulated cycles than mosi.  This is the acceptance
  criterion "MESI measurably reduces upgrade traffic", asserted on
  deterministic simulated-cycle counts so it holds even in smoke.
* **arbiters only arbitrate** — wrr completes the same workload with
  the same committed work; its wall cost appears only under contention,
  so the end-to-end ratio gets a loose regression floor (skipped in
  smoke: sub-second runs are startup-dominated).

``REPRO_BENCH_JSON`` gets one row per guard (``coherence_protocol_
overhead``, ``coherence_upgrade_traffic``) for the committed
``BENCH_hotpaths.json`` trajectory.
"""

import time

from repro.config import SystemConfig
from repro.experiments import RunSpec, build_machine
from repro.system.machine import Machine
from repro.workloads.base import SyntheticWorkload, WorkloadSpec

from benchmarks.conftest import record_bench, run_once, smoke_mode

SMOKE = smoke_mode()

# The same CPU-hot stream as the CPU guard: private, cache-resident,
# store-heavy — after warmup every op rides the burst fast path, which
# is exactly where protocol-object overhead would show up.
CPU_HOT = WorkloadSpec(name="cpu_hot", shared_frac=0.0, private_blocks=64,
                       private_hot_blocks=64, store_hot_blocks=64,
                       ro_shared_blocks=8, rw_shared_blocks=8,
                       migratory_blocks=4)
HOT_WARMUP = 2_000 if SMOKE else 5_000
HOT_INSTRUCTIONS = 6_000 if SMOKE else 30_000
#: mesi (the generic protocol path, exercised hardest) vs mosi (the
#: guarded default path) on the hot stream.  Smoke runs are noisy, so
#: the bound loosens there; the claim itself is the full-profile 1.05.
MAX_PROTOCOL_OVERHEAD = 1.25 if SMOKE else 1.05
MAX_ARBITER_OVERHEAD = 1.30
TIMING_REPEATS = 3

SHARING_INSTRUCTIONS = 2_000 if SMOKE else 6_000


def _hot_machine(protocol: str) -> Machine:
    config = SystemConfig.sim_scaled(16).with_overrides(protocol=protocol)
    return Machine(config, SyntheticWorkload(CPU_HOT, 16, seed=1), seed=1)


def _hot_run(protocol: str):
    machine = _hot_machine(protocol)
    started = time.perf_counter()
    result = machine.run_with_warmup(HOT_WARMUP, HOT_INSTRUCTIONS,
                                     max_cycles=120_000_000)
    elapsed = time.perf_counter() - started
    assert result.completed and not result.crashed
    key = (result.cycles, result.committed_instructions, result.recoveries)
    return key, elapsed, machine.sim.events_dispatched


def _best_interleaved(variants, run):
    """Best-of-N per variant, interleaved within each round so machine
    drift cannot bias the ratio (same discipline as the CPU guard)."""
    best = {v: float("inf") for v in variants}
    keys = {}
    for _ in range(TIMING_REPEATS):
        for variant in variants:
            key, elapsed, events = run(variant)
            best[variant] = min(best[variant], elapsed)
            if variant not in keys:
                keys[variant] = (key, events)
            else:
                assert keys[variant] == (key, events)  # deterministic
    return best, keys


def test_protocol_object_overhead_on_hot_stream(benchmark):
    best, keys = run_once(
        lambda: _best_interleaved(("mosi", "mesi"), _hot_run), benchmark)
    overhead = best["mesi"] / best["mosi"]
    print(f"\ncoherence hot stream ({HOT_INSTRUCTIONS} instr/cpu):"
          f"\n  mosi: {best['mosi']:.3f}s, {keys['mosi'][1]:,} events"
          f"\n  mesi: {best['mesi']:.3f}s, {keys['mesi'][1]:,} events"
          f"\n  mesi/mosi wall ratio: {overhead:.3f} "
          f"(bound {MAX_PROTOCOL_OVERHEAD})")
    # On an all-private stream mesi commits the same instruction count
    # in no more cycles (first store upgrades silently instead of
    # re-crossing the network).
    assert keys["mesi"][0][1] == keys["mosi"][0][1]
    assert keys["mesi"][0][0] <= keys["mosi"][0][0]
    assert overhead <= MAX_PROTOCOL_OVERHEAD, \
        f"protocol machinery costs {overhead:.3f}x on the hot path"
    record_bench("coherence_protocol_overhead", round(1 / overhead, 3),
                 keys["mosi"][1], best["mosi"],
                 mesi_wall_s=round(best["mesi"], 4),
                 mosi_cycles=keys["mosi"][0][0],
                 mesi_cycles=keys["mesi"][0][0])


def _sharing_run(protocol: str):
    spec = RunSpec(workload="apache", instructions=SHARING_INSTRUCTIONS,
                   seed=1, scale=64, torus_width=4, torus_height=4,
                   protocol=protocol)
    machine = build_machine(spec)
    result = machine.run(spec.instructions, max_cycles=spec.max_cycles)
    assert result.completed
    networked = sum(n.cache.c_upgrades.value for n in machine.nodes)
    silent = sum(n.cache.c_silent_upgrade.value for n in machine.nodes)
    return result.cycles, networked, silent, machine.sim.events_dispatched


def test_mesi_reduces_upgrade_traffic_and_cycles(benchmark):
    def measure():
        return _sharing_run("mosi"), _sharing_run("mesi")

    (mosi_cycles, mosi_net, mosi_silent, mosi_ev), \
        (mesi_cycles, mesi_net, mesi_silent, mesi_ev) = \
        run_once(measure, benchmark)
    print(f"\nupgrade traffic (apache 4x4, {SHARING_INSTRUCTIONS} "
          f"instr/cpu):"
          f"\n  mosi: {mosi_net} networked upgrades, {mosi_cycles:,} cycles"
          f"\n  mesi: {mesi_net} networked + {mesi_silent} silent, "
          f"{mesi_cycles:,} cycles")
    assert mosi_silent == 0
    assert mesi_silent > 0, "mesi never upgraded silently"
    assert mesi_net < mosi_net, \
        "mesi must convert networked upgrades into silent ones"
    assert mesi_cycles <= mosi_cycles, \
        "mesi slower than mosi on a sharing mix — E state not paying off"
    record_bench("coherence_upgrade_traffic",
                 round(mosi_cycles / mesi_cycles, 3), mesi_ev,
                 0.0, mosi_networked=mosi_net, mesi_networked=mesi_net,
                 mesi_silent=mesi_silent)


def test_arbiter_overhead_end_to_end(benchmark):
    def run(arbiter: str):
        spec = RunSpec(workload="apache", instructions=SHARING_INSTRUCTIONS,
                       seed=1, scale=64, torus_width=4, torus_height=4,
                       arbiter=arbiter)
        machine = build_machine(spec)
        started = time.perf_counter()
        result = machine.run(spec.instructions, max_cycles=spec.max_cycles)
        elapsed = time.perf_counter() - started
        assert result.completed and not result.crashed
        return (result.committed_instructions,), elapsed, \
            machine.sim.events_dispatched

    best, keys = run_once(
        lambda: _best_interleaved(("fifo", "wrr"), run), benchmark)
    ratio = best["wrr"] / best["fifo"]
    print(f"\narbiter end-to-end: fifo {best['fifo']:.3f}s, "
          f"wrr {best['wrr']:.3f}s (ratio {ratio:.3f})")
    assert keys["wrr"][0] == keys["fifo"][0]  # same committed work
    if not SMOKE:
        assert ratio <= MAX_ARBITER_OVERHEAD, \
            f"wrr arbitration costs {ratio:.3f}x end-to-end"
